(* crusade — command-line front end for the co-synthesis library.

     crusade synth A1TR --scale 8 --no-reconfig
     crusade ft NGXM --scale 16
     crusade delay cvs1
     crusade list *)

module C = Crusade.Crusade_core
module F = Crusade_fault.Ft
module W = Crusade_workloads.Comm_system
module Ex = Crusade_workloads.Examples

open Cmdliner

let spec_of_name ?seed name scale =
  let lib = Crusade_resource.Library.stock () in
  let small = Crusade_resource.Library.small () in
  match name with
  | "figure2" -> Ok (Ex.figure2 small, small)
  | "figure4" -> Ok (Ex.figure4 small, small)
  | "multirate" -> Ok (Ex.multirate lib, lib)
  | _ -> (
      match W.preset name with
      | params ->
          let params = W.scaled params scale in
          let params =
            match seed with Some s -> { params with W.seed = s } | None -> params
          in
          Ok (W.generate lib params, lib)
      | exception Not_found ->
          Error
            (Printf.sprintf
               "unknown workload %s (try `crusade list`)" name))

let name_arg =
  let doc = "Workload: one of the Table 2 examples (A1TR ... NGXM), figure2, figure4, multirate." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let scale_arg =
  let doc = "Divide the example's task count by $(docv) (generated examples only)." in
  Arg.(value & opt float 8.0 & info [ "scale" ] ~docv:"N" ~doc)

let reconfig_arg =
  let doc = "Disable dynamic reconfiguration (single configuration per device)." in
  Arg.(value & flag & info [ "no-reconfig" ] ~doc)

(* Integer converters that reject non-numeric and out-of-range values
   with a message naming the flag, instead of failing deep in the flow. *)
let int_conv ~flag ~ok ~expects =
  let parse s =
    match int_of_string_opt s with
    | Some v when ok v -> Ok v
    | Some v ->
        Error (`Msg (Printf.sprintf "%s must be %s (got %d)" flag expects v))
    | None ->
        Error (`Msg (Printf.sprintf "%s expects an integer (got %s)" flag s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_int flag = int_conv ~flag ~ok:(fun v -> v > 0) ~expects:"positive"

let non_negative_int flag =
  int_conv ~flag ~ok:(fun v -> v >= 0) ~expects:"non-negative"

let copy_cap_arg =
  let doc =
    "Cap on explicit association-array copies per graph (positive)."
  in
  Arg.(
    value
    & opt (some (positive_int "--copy-cap")) None
    & info [ "copy-cap" ] ~docv:"N" ~doc)

let eval_window_arg =
  let doc =
    "Allocation candidates evaluated per cluster before falling back to the \
     least-tardy one (positive)."
  in
  Arg.(
    value
    & opt (some (positive_int "--eval-window")) None
    & info [ "eval-window" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Override the workload generator seed (generated examples only)." in
  Arg.(
    value
    & opt (some (non_negative_int "--seed")) None
    & info [ "seed" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON profile of the synthesis phases to \
     $(docv) (load it in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let portfolio_arg =
  let doc =
    "Run $(docv) perturbed synthesis trajectories in parallel and keep the \
     cheapest feasible result (0 = one trajectory per available domain).  \
     Trajectory 0 is the unperturbed flow, so the portfolio never returns a \
     worse architecture than the plain run; 1 (the default) is the plain run \
     itself, bit for bit."
  in
  Arg.(
    value
    & opt (some (non_negative_int "--portfolio")) None
    & info [ "portfolio" ] ~docv:"N" ~doc)

let budget_ms_arg =
  let doc =
    "Anytime wall-clock budget in milliseconds: trajectories past the \
     deadline abort at their next check point and the best architecture \
     found so far is returned.  The unperturbed trajectory is exempt, so a \
     result is always produced."
  in
  Arg.(
    value
    & opt (some (positive_int "--budget-ms")) None
    & info [ "budget-ms" ] ~docv:"MS" ~doc)

let quality_arg =
  let doc =
    "Effort preset: $(b,fast) = single trajectory, $(b,balanced) = 4 \
     trajectories, $(b,max) = one trajectory per available domain.  An \
     explicit $(b,--portfolio) overrides it."
  in
  Arg.(
    value
    & opt (some (enum [ ("fast", `Fast); ("balanced", `Balanced); ("max", `Max) ])) None
    & info [ "quality" ] ~docv:"LEVEL" ~doc)

(* --portfolio wins over --quality; no flag at all means the plain flow. *)
let resolve_portfolio portfolio quality =
  match (portfolio, quality) with
  | Some n, _ -> n
  | None, Some `Fast -> 1
  | None, Some `Balanced -> 4
  | None, Some `Max -> 0
  | None, None -> 1

let pp_portfolio_summary (stats : C.Portfolio.stats) ~best_index ~best_cost
    ~baseline_cost =
  Format.printf
    "portfolio    : best of %d trajectories is #%d (%d completed, %d failed, \
     %d aborted: %d bound / %d budget; %d incumbent updates)@."
    stats.C.Portfolio.launched best_index stats.C.Portfolio.completed
    stats.C.Portfolio.failed stats.C.Portfolio.aborted
    stats.C.Portfolio.bound_aborts stats.C.Portfolio.budget_aborts
    stats.C.Portfolio.incumbent_updates;
  match baseline_cost with
  | Some b ->
      Format.printf "vs trajectory 0: $%s -> $%s (saved $%s)@."
        (Crusade_util.Text_table.fmt_dollars b)
        (Crusade_util.Text_table.fmt_dollars best_cost)
        (Crusade_util.Text_table.fmt_dollars (b -. best_cost))
  | None -> ()

let no_incremental_arg =
  let doc =
    "Disable incremental rescheduling (candidate evaluation by prefix replay \
     of the last full scheduler run).  Results are bit-identical with it on \
     or off; only the synthesis time moves.  Escape hatch and A/B lever."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_incremental_merge_arg =
  let doc =
    "Disable the incremental merge phase (sequential merge trials as \
     journaled in-place deltas on the live architecture instead of per-trial \
     deep copies).  Results are bit-identical with it on or off; only the \
     synthesis time moves.  Escape hatch and A/B lever."
  in
  Arg.(value & flag & info [ "no-incremental-merge" ] ~doc)

let audit_arg =
  let doc =
    "After synthesis, re-derive every architecture and schedule invariant \
     from first principles (capacities, occupancy, connectivity, exclusion, \
     mode compatibility, cost and count accounting, timeline validity) and \
     exit with code 3 if any is violated.  Runs once on the finished result, \
     off the synthesis hot path."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

(* Shared by synth/ft: print violations (if any) and fold the audit
   verdict into the exit code — violations trump a deadline miss. *)
let audit_exit ~audit violations base_exit =
  if not audit then base_exit
  else begin
    match violations with
    | [] ->
        print_endline "audit: all invariants hold";
        base_exit
    | vs ->
        List.iter
          (fun v -> Format.printf "%a@." Crusade_alloc.Audit.pp_violation v)
          vs;
        Printf.printf "audit: %d violation(s)\n" (List.length vs);
        3
  end

let options_with ~no_reconfig ~no_incremental ~no_incremental_merge ~copy_cap
    ~eval_window ~trace =
  let opts =
    {
      C.default_options with
      dynamic_reconfiguration = not no_reconfig;
      incremental = not no_incremental;
      incremental_merge = not no_incremental_merge;
    }
  in
  let opts =
    match copy_cap with Some v -> { opts with C.copy_cap = v } | None -> opts
  in
  let opts =
    match eval_window with
    | Some v -> { opts with C.eval_window = v }
    | None -> opts
  in
  { opts with C.trace }

(* The sink is flushed to disk even when synthesis fails: a trace of the
   failing run is exactly what the flag is for. *)
let with_trace trace_file k =
  let trace = Option.map (fun _ -> Crusade_util.Trace.create ()) trace_file in
  Fun.protect
    ~finally:(fun () ->
      match (trace_file, trace) with
      | Some path, Some t -> Crusade_util.Trace.write_file t path
      | _ -> ())
    (fun () -> k trace)

let synth_run name scale no_reconfig no_incremental no_incremental_merge
    copy_cap eval_window seed trace_file audit portfolio budget_ms quality =
  match spec_of_name ?seed name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) ->
      with_trace trace_file (fun trace ->
          let options =
            options_with ~no_reconfig ~no_incremental ~no_incremental_merge
              ~copy_cap ~eval_window ~trace
          in
          let n = resolve_portfolio portfolio quality in
          if n = 1 && budget_ms = None then
            match C.synthesize ~options spec lib with
            | Ok r ->
                Format.printf "%a@." C.pp_report r;
                let base = if r.C.deadlines_met then 0 else 2 in
                audit_exit ~audit (if audit then C.audit r else []) base
            | Error msg ->
                prerr_endline msg;
                1
          else
            match
              C.Portfolio.run ?budget_ms ~n ~options
                ~flow:(fun o -> C.synthesize ~options:o spec lib)
                ~cost:(fun (r : C.result) -> r.C.cost)
                ~met:(fun (r : C.result) -> r.C.deadlines_met)
                ()
            with
            | Ok o ->
                let r =
                  {
                    o.C.Portfolio.best with
                    C.eval_stats =
                      C.Portfolio.annotate o.C.Portfolio.best.C.eval_stats
                        o.C.Portfolio.stats;
                  }
                in
                Format.printf "%a@." C.pp_report r;
                pp_portfolio_summary o.C.Portfolio.stats
                  ~best_index:o.C.Portfolio.best_index
                  ~best_cost:o.C.Portfolio.best_cost
                  ~baseline_cost:o.C.Portfolio.baseline_cost;
                let base = if r.C.deadlines_met then 0 else 2 in
                audit_exit ~audit (if audit then C.audit r else []) base
            | Error msg ->
                prerr_endline msg;
                1)

let ft_run name scale no_reconfig no_incremental no_incremental_merge copy_cap
    eval_window seed trace_file audit portfolio budget_ms quality =
  match spec_of_name ?seed name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) ->
      with_trace trace_file (fun trace ->
      let options =
        options_with ~no_reconfig ~no_incremental ~no_incremental_merge
          ~copy_cap ~eval_window ~trace
      in
      let report (r : F.result) portfolio_outcome =
        Format.printf "%a@." C.pp_report r.F.core;
        Format.printf "spares cost $%s; total $%s@."
          (Crusade_util.Text_table.fmt_dollars
             r.F.provisioning.Crusade_fault.Dependability.spare_cost)
          (Crusade_util.Text_table.fmt_dollars r.F.total_cost);
        (match portfolio_outcome with
        | None -> ()
        | Some o ->
            pp_portfolio_summary o.C.Portfolio.stats
              ~best_index:o.C.Portfolio.best_index
              ~best_cost:o.C.Portfolio.best_cost
              ~baseline_cost:o.C.Portfolio.baseline_cost);
        let base = if r.F.core.C.deadlines_met then 0 else 2 in
        audit_exit ~audit (if audit then F.audit r else []) base
      in
      let n = resolve_portfolio portfolio quality in
      if n = 1 && budget_ms = None then
        match F.synthesize ~options spec lib with
        | Ok r -> report r None
        | Error msg ->
            prerr_endline msg;
            1
      else
        match
          C.Portfolio.run ?budget_ms ~n ~options
            ~flow:(fun o -> F.synthesize ~options:o spec lib)
            ~cost:(fun (r : F.result) -> r.F.total_cost)
            ~met:(fun (r : F.result) -> r.F.core.C.deadlines_met)
            ()
        with
        | Ok o ->
            let best = o.C.Portfolio.best in
            let r =
              {
                best with
                F.core =
                  {
                    best.F.core with
                    C.eval_stats =
                      C.Portfolio.annotate best.F.core.C.eval_stats
                        o.C.Portfolio.stats;
                  };
              }
            in
            report r (Some o)
        | Error msg ->
            prerr_endline msg;
            1)

let delay_run circuit =
  match
    List.find_opt
      (fun (c : Ex.table1_circuit) -> c.circuit_name = circuit)
      Ex.table1_circuits
  with
  | None ->
      Printf.eprintf "unknown circuit %s (cvs1 ... pewxfm)\n" circuit;
      1
  | Some c ->
      let netlist = Ex.table1_netlist c in
      Printf.printf "%s (%d PFUs, %d pins): delay increase vs ERUF at EPUF=0.80\n"
        c.circuit_name c.pfus c.pins;
      List.iter
        (fun eruf ->
          match Crusade_pnr.Delay.measure netlist ~eruf ~epuf:0.80 ~seed:7 with
          | Crusade_pnr.Delay.Increase_pct p ->
              Printf.printf "  ERUF %.2f: %6.1f %%\n" eruf p
          | Crusade_pnr.Delay.Unroutable ->
              Printf.printf "  ERUF %.2f: not routable\n" eruf)
        [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 1.00 ];
      0

let spec_run name scale seed =
  match spec_of_name ?seed name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, _) ->
      print_string (Crusade_taskgraph.Dsl.print spec);
      0

let list_run () =
  print_endline "Generated examples (Table 2/3; use --scale to shrink):";
  List.iter
    (fun name ->
      let p = W.preset name in
      Printf.printf "  %-8s %5d tasks\n" name p.W.n_tasks)
    W.preset_names;
  print_endline "Hand-built examples: figure2, figure4, multirate";
  print_endline "Table 1 circuits:";
  List.iter
    (fun (c : Ex.table1_circuit) -> Printf.printf "  %-8s %3d PFUs\n" c.circuit_name c.pfus)
    Ex.table1_circuits;
  0

let synth_cmd =
  let doc = "co-synthesize an architecture for a workload" in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const synth_run $ name_arg $ scale_arg $ reconfig_arg $ no_incremental_arg
      $ no_incremental_merge_arg $ copy_cap_arg $ eval_window_arg $ seed_arg
      $ trace_arg $ audit_arg $ portfolio_arg $ budget_ms_arg $ quality_arg)

let ft_cmd =
  let doc = "co-synthesize a fault-tolerant architecture (CRUSADE-FT)" in
  Cmd.v (Cmd.info "ft" ~doc)
    Term.(
      const ft_run $ name_arg $ scale_arg $ reconfig_arg $ no_incremental_arg
      $ no_incremental_merge_arg $ copy_cap_arg $ eval_window_arg $ seed_arg
      $ trace_arg $ audit_arg $ portfolio_arg $ budget_ms_arg $ quality_arg)

let delay_cmd =
  let doc = "run the ERUF/EPUF delay-management sweep for a Table 1 circuit" in
  let circuit =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc:"Circuit name.")
  in
  Cmd.v (Cmd.info "delay" ~doc) Term.(const delay_run $ circuit)

let report_run name scale fmt_kind =
  match spec_of_name name scale with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (spec, lib) -> (
      match C.synthesize spec lib with
      | Error msg ->
          prerr_endline msg;
          1
      | Ok r ->
          (match fmt_kind with
          | "dot" ->
              print_string
                (Crusade_alloc.Export.to_dot ~title:name r.C.clustering
                   ~t_arch:r.C.arch)
          | "gantt" ->
              print_string
                (Crusade_sched.Gantt.render spec r.C.clustering r.C.arch r.C.schedule)
          | "program" ->
              List.iter
                (Format.printf "%a@." Crusade_reconfig.Program.pp)
                (Crusade_reconfig.Program.extract spec r.C.clustering r.C.arch
                   r.C.schedule)
          | "inventory" -> print_string (Crusade_alloc.Export.inventory r.C.arch)
          | other -> Printf.eprintf "unknown format %s\n" other);
          0)

let upgrade_run audit =
  let lib = Crusade_resource.Library.small () in
  let spec, upgrade_graphs = Ex.upgrade_scenario lib in
  match Crusade.Upgrade.analyze spec lib ~upgrade_graphs with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok ({ Crusade.Upgrade.base; verdict; _ } as report) ->
      Format.printf "deployed: %a@." C.pp_report base;
      let base_exit =
        match verdict with
        | Crusade.Upgrade.Reprogramming_only { added_images; _ } ->
            Format.printf "upgrade ships as %d configuration image(s)@."
              added_images;
            0
        | Crusade.Upgrade.Needs_hardware { added_pes; added_cost; _ } ->
            Format.printf "upgrade needs %d new PE(s), +$%.0f@." added_pes
              added_cost;
            0
        | Crusade.Upgrade.Infeasible msg ->
            Format.printf "upgrade infeasible: %s@." msg;
            2
      in
      audit_exit ~audit
        (if audit then Crusade.Upgrade.audit report else [])
        base_exit

(* ---- resynth: warm re-synthesis under a change event ---- *)

(* Minimal JSON reader for --change-json: objects, arrays of ints,
   strings and integers — the full shape of a change event, e.g.
   {"kind": "pe-fail", "pe": 0} or {"kind": "arrival", "graphs": [2,3]}. *)
let parse_change_json s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "--change-json: %s at offset %d" msg !pos) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then begin incr pos; Ok () end
    else Error (Printf.sprintf "--change-json: expected '%c' at offset %d" c !pos)
  in
  let parse_string () =
    skip_ws ();
    match expect '"' with
    | Error _ as e -> e
    | Ok () ->
        let start = !pos in
        while !pos < n && s.[!pos] <> '"' do incr pos done;
        if !pos >= n then error "unterminated string"
        else begin
          let v = String.sub s start (!pos - start) in
          incr pos;
          Ok v
        end
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && (s.[!pos] = '-' || s.[!pos] = '+') then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Ok v
    | None -> error "expected an integer"
  in
  let parse_int_list () =
    match expect '[' with
    | Error _ as e -> e
    | Ok () ->
        skip_ws ();
        if !pos < n && s.[!pos] = ']' then begin incr pos; Ok [] end
        else begin
          let rec elems acc =
            match parse_int () with
            | Error _ as e -> e
            | Ok v -> (
                skip_ws ();
                if !pos < n && s.[!pos] = ',' then begin incr pos; elems (v :: acc) end
                else
                  match expect ']' with
                  | Ok () -> Ok (List.rev (v :: acc))
                  | Error _ as e -> e)
          in
          elems []
        end
  in
  let kind = ref None and graphs = ref None and pe = ref None and percent = ref None in
  let rec members () =
    match parse_string () with
    | Error _ as e -> e
    | Ok key -> (
        match expect ':' with
        | Error _ as e -> e
        | Ok () -> (
            let field =
              match key with
              | "kind" -> Result.map (fun v -> kind := Some v) (parse_string ())
              | "graphs" -> Result.map (fun v -> graphs := Some v) (parse_int_list ())
              | "pe" -> Result.map (fun v -> pe := Some v) (parse_int ())
              | "percent" | "drift" -> Result.map (fun v -> percent := Some v) (parse_int ())
              | other -> Error (Printf.sprintf "--change-json: unknown key %S" other)
            in
            match field with
            | Error _ as e -> e
            | Ok () -> (
                skip_ws ();
                if !pos < n && s.[!pos] = ',' then begin incr pos; members () end
                else expect '}')))
  in
  match expect '{' with
  | Error _ as e -> e
  | Ok () -> (
      match members () with
      | Error _ as e -> e
      | Ok () -> (
          let need_graphs what k =
            match !graphs with
            | Some (_ :: _ as gs) -> Ok (k gs)
            | Some [] | None ->
                Error (Printf.sprintf "--change-json: %S needs \"graphs\"" what)
          in
          match !kind with
          | Some ("arrival" | "graph-arrival") ->
              need_graphs "arrival" (fun gs -> C.Resynth.Graph_arrival gs)
          | Some ("departure" | "graph-departure") ->
              need_graphs "departure" (fun gs -> C.Resynth.Graph_departure gs)
          | Some "upgrade" -> need_graphs "upgrade" (fun gs -> C.Resynth.Upgrade gs)
          | Some ("pe-fail" | "pe-failure") -> (
              match !pe with
              | Some p -> Ok (C.Resynth.Pe_failure p)
              | None -> Error "--change-json: \"pe-fail\" needs \"pe\"")
          | Some "drift" -> (
              match !percent with
              | Some p -> Ok (C.Resynth.Exec_drift p)
              | None -> Error "--change-json: \"drift\" needs \"percent\"")
          | Some other -> Error (Printf.sprintf "--change-json: unknown kind %S" other)
          | None -> Error "--change-json: missing \"kind\""))

let change_of_flags ~change_kind ~graphs ~pe ~drift_pct ~change_json =
  match change_json with
  | Some s -> parse_change_json s
  | None -> (
      let need_graphs what k =
        match graphs with
        | Some (_ :: _ as gs) -> Ok (k gs)
        | Some [] | None ->
            Error (Printf.sprintf "--change %s needs --graphs" what)
      in
      match change_kind with
      | None -> Error "resynth needs --change (or --change-json)"
      | Some `Arrival -> need_graphs "arrival" (fun gs -> C.Resynth.Graph_arrival gs)
      | Some `Departure ->
          need_graphs "departure" (fun gs -> C.Resynth.Graph_departure gs)
      | Some `Upgrade -> need_graphs "upgrade" (fun gs -> C.Resynth.Upgrade gs)
      | Some `Pe_fail -> (
          match pe with
          | Some p -> Ok (C.Resynth.Pe_failure p)
          | None -> Error "--change pe-fail needs --pe")
      | Some `Drift -> (
          match drift_pct with
          | Some p -> Ok (C.Resynth.Exec_drift p)
          | None -> Error "--change drift needs --drift-pct"))

(* The from-scratch synthesis the warm repair is measured against: the
   same post-change workload, no deployed architecture. *)
let scratch_of_change options spec lib change =
  match change with
  | C.Resynth.Graph_arrival _ | C.Resynth.Upgrade _ | C.Resynth.Pe_failure _ ->
      C.synthesize ~options spec lib
  | C.Resynth.Graph_departure gs ->
      C.synthesize ~options ~include_graph:(fun g -> not (List.mem g gs)) spec lib
  | C.Resynth.Exec_drift pct -> (
      match C.Resynth.drift_spec spec pct with
      | Ok spec' -> C.synthesize ~options spec' lib
      | Error _ as e -> e)

let resynth_run name scale change_kind graphs pe drift_pct change_json
    no_reconfig no_incremental no_incremental_merge copy_cap eval_window seed
    trace_file audit compare =
  match change_of_flags ~change_kind ~graphs ~pe ~drift_pct ~change_json with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok change -> (
      match spec_of_name ?seed name scale with
      | Error msg ->
          prerr_endline msg;
          1
      | Ok (spec, lib) ->
          with_trace trace_file (fun trace ->
              let options =
                options_with ~no_reconfig ~no_incremental ~no_incremental_merge
                  ~copy_cap ~eval_window ~trace
              in
              (* Arrivals/upgrades are deployed without the arriving
                 graphs; every other change starts from the full system. *)
              let deployed_include =
                match change with
                | C.Resynth.Graph_arrival gs | C.Resynth.Upgrade gs ->
                    fun g -> not (List.mem g gs)
                | C.Resynth.Graph_departure _ | C.Resynth.Pe_failure _
                | C.Resynth.Exec_drift _ ->
                    fun _ -> true
              in
              match
                C.synthesize ~options ~include_graph:deployed_include spec lib
              with
              | Error msg ->
                  prerr_endline ("deployed synthesis: " ^ msg);
                  1
              | Ok deployed -> (
                  match C.Resynth.apply ~options deployed change with
                  | Error msg ->
                      prerr_endline msg;
                      1
                  | Ok rep ->
                      Format.printf "deployed     : cost $%s, %d PEs@."
                        (Crusade_util.Text_table.fmt_dollars deployed.C.cost)
                        deployed.C.n_pes;
                      Format.printf "%a@." C.Resynth.pp_report rep;
                      if compare then begin
                        match scratch_of_change options spec lib change with
                        | Ok scratch ->
                            let resynth_feasible =
                              C.Resynth.final_result rep <> None
                            in
                            Format.printf
                              "from scratch : %.2f s, cost $%s, deadlines %s \
                               (warm resynth %.2f s, verdicts %s)@."
                              scratch.C.wall_seconds
                              (Crusade_util.Text_table.fmt_dollars
                                 scratch.C.cost)
                              (if scratch.C.deadlines_met then "met"
                               else "missed")
                              rep.C.Resynth.resynth_seconds
                              (if
                                 resynth_feasible = scratch.C.deadlines_met
                               then "match"
                               else "DIFFER")
                        | Error msg ->
                            Format.printf "from scratch : failed (%s)@." msg
                      end;
                      let base =
                        match rep.C.Resynth.verdict with
                        | C.Resynth.Images_only _ | C.Resynth.Needs_hardware _
                          ->
                            0
                        | C.Resynth.Infeasible -> 2
                      in
                      audit_exit ~audit
                        (if audit then C.Resynth.audit_report rep else [])
                        base)))

let report_cmd =
  let doc = "synthesize and export (dot | gantt | program | inventory)" in
  let fmt_arg =
    Arg.(value & opt string "inventory" & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const report_run $ name_arg $ scale_arg $ fmt_arg)

let upgrade_cmd =
  let doc = "run the field-upgrade analysis on the built-in scenario" in
  Cmd.v (Cmd.info "upgrade" ~doc) Term.(const upgrade_run $ audit_arg)

let change_kind_arg =
  let doc =
    "Change event kind: $(b,arrival), $(b,departure), $(b,pe-fail), \
     $(b,drift) or $(b,upgrade)."
  in
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("arrival", `Arrival);
                ("graph-arrival", `Arrival);
                ("departure", `Departure);
                ("graph-departure", `Departure);
                ("pe-fail", `Pe_fail);
                ("pe-failure", `Pe_fail);
                ("drift", `Drift);
                ("upgrade", `Upgrade);
              ]))
        None
    & info [ "change" ] ~docv:"KIND" ~doc)

let graphs_arg =
  let doc = "Comma-separated graph ids for arrival/departure/upgrade changes." in
  Arg.(value & opt (some (list int)) None & info [ "graphs" ] ~docv:"IDS" ~doc)

let pe_arg =
  let doc = "Failed PE instance id for $(b,--change pe-fail)." in
  Arg.(
    value
    & opt (some (non_negative_int "--pe")) None
    & info [ "pe" ] ~docv:"N" ~doc)

let drift_pct_arg =
  let doc =
    "Execution-time drift percentage for $(b,--change drift) (e.g. 20 means \
     every measured execution time grew 20%)."
  in
  Arg.(value & opt (some int) None & info [ "drift-pct" ] ~docv:"PCT" ~doc)

let change_json_arg =
  let doc =
    "Change event as JSON, e.g. '{\"kind\": \"pe-fail\", \"pe\": 0}' or \
     '{\"kind\": \"arrival\", \"graphs\": [2,3]}'.  Overrides the individual \
     change flags."
  in
  Arg.(value & opt (some string) None & info [ "change-json" ] ~docv:"JSON" ~doc)

let compare_arg =
  let doc =
    "Also run a cold from-scratch synthesis of the post-change workload and \
     report whether the warm repair reached the same feasibility verdict, \
     and how the wall times compare."
  in
  Arg.(value & flag & info [ "compare" ] ~doc)

let resynth_cmd =
  let doc =
    "repair a deployed architecture under a change event instead of \
     re-synthesizing from scratch"
  in
  Cmd.v (Cmd.info "resynth" ~doc)
    Term.(
      const resynth_run $ name_arg $ scale_arg $ change_kind_arg $ graphs_arg
      $ pe_arg $ drift_pct_arg $ change_json_arg $ reconfig_arg
      $ no_incremental_arg $ no_incremental_merge_arg $ copy_cap_arg
      $ eval_window_arg $ seed_arg $ trace_arg $ audit_arg $ compare_arg)

let spec_cmd =
  let doc =
    "print a workload's specification in the textual DSL (the format \
     $(b,crusade-serve) jobs are submitted in)"
  in
  Cmd.v (Cmd.info "spec" ~doc)
    Term.(const spec_run $ name_arg $ scale_arg $ seed_arg)

let list_cmd =
  let doc = "list available workloads and circuits" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_run $ const ())

let main =
  let doc = "hardware/software co-synthesis of dynamically reconfigurable systems" in
  Cmd.group (Cmd.info "crusade" ~version:"1.0.0" ~doc)
    [ synth_cmd; ft_cmd; delay_cmd; report_cmd; upgrade_cmd; resynth_cmd;
      spec_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
