lib/taskgraph/task.ml: Array List Printf
