(** Busy-interval timelines for serially shared resources (general-purpose
    processors and communication links).

    Insertion-based list scheduling: each new piece of work is placed into
    the earliest gap that fits.  A processor timeline may split work
    around existing reservations — the resident (higher-priority,
    already-scheduled) work preempts the newcomer, which pays the
    preemption overhead per extra chunk (Section 5's restricted
    preemptive scheduling). *)

type t

val create : unit -> t

val insert : t -> ready:int -> duration:int -> int * int
(** Places an indivisible piece of work in the earliest gap starting at
    or after [ready]; returns (start, finish). *)

val insert_preemptible :
  ?on_commit:(int -> int -> unit) ->
  t ->
  ready:int ->
  duration:int ->
  max_chunks:int ->
  chunk_penalty:int ->
  int * int
(** Places work that may be cut into up to [max_chunks] chunks around
    existing reservations, paying [chunk_penalty] extra work per cut.
    Chunks smaller than a quarter of the total are not created.  Returns
    (start of first chunk, finish of last chunk).  [?on_commit] is called
    once per committed chunk with its (start, stop) — the incremental
    engine records the exact reservations this call made. *)

val append : t -> int -> int -> unit
(** Appends a busy interval whose start is at or after every existing
    interval's start, coalescing when touching.  Replaying a timeline's
    committed intervals in start order through [append] rebuilds exactly
    the state the original out-of-order {!insert} calls produced (the
    normalized representation is canonical).  Incremental-replay only;
    feeding it unsorted intervals corrupts the timeline. *)

val busy : t -> (int * int) list
(** Current reservations, sorted and disjoint. *)

val busy_until : t -> int
(** End of the last reservation; 0 when empty. *)

val probe : t -> ready:int -> duration:int -> int * int
(** Like {!insert} but without reserving: used to compare candidate
    links before committing to the best one. *)
