lib/reconfig/compat.ml: Array Crusade_sched Crusade_taskgraph Crusade_util List
