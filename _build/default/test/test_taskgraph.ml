module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Graph = Crusade_taskgraph.Graph

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let mk_task ?(id = 0) ?(graph = 0) ?(exec = [| 100; 200; -1 |]) ?preference
    ?(exclusion = []) ?(deadline = None) () : Task.t =
  {
    id;
    name = Printf.sprintf "t%d" id;
    graph;
    exec;
    preference;
    exclusion;
    memory = Task.no_memory;
    gates = 0;
    pins = 0;
    deadline;
    ft = Task.default_ft;
  }

(* --- Task --- *)

let task_exec_on () =
  let t = mk_task () in
  check Alcotest.(option int) "feasible" (Some 100) (Task.exec_on t 0);
  check Alcotest.(option int) "infeasible" None (Task.exec_on t 2);
  check Alcotest.(option int) "out of range" None (Task.exec_on t 7);
  check Alcotest.bool "can_run_on" true (Task.can_run_on t 1)

let task_preference_forbids () =
  let t = mk_task ~preference:[| 1; 0; 1 |] () in
  check Alcotest.(option int) "preferred ok" (Some 100) (Task.exec_on t 0);
  check Alcotest.(option int) "preference 0 forbids" None (Task.exec_on t 1)

let task_min_max_exec () =
  let t = mk_task () in
  check Alcotest.int "max" 200 (Task.max_exec t);
  check Alcotest.int "min" 100 (Task.min_exec t)

let task_runs_nowhere () =
  let t = mk_task ~exec:[| -1; -1; -1 |] () in
  check Alcotest.bool "max_exec raises" true
    (try
       ignore (Task.max_exec t);
       false
     with Failure _ -> true)

let task_excludes () =
  let a = mk_task ~id:0 ~exclusion:[ 1 ] () in
  let b = mk_task ~id:1 () in
  let c = mk_task ~id:2 () in
  check Alcotest.bool "one-sided exclusion counts" true (Task.excludes a b);
  check Alcotest.bool "symmetric view" true (Task.excludes b a);
  check Alcotest.bool "unrelated" false (Task.excludes b c)

let task_memory_total () =
  let m = { Task.program_bytes = 10; data_bytes = 20; stack_bytes = 5 } in
  check Alcotest.int "total" 35 (Task.total_bytes m)

(* --- Graph --- *)

let chain_graph n =
  let tasks = Array.init n (fun i -> mk_task ~id:i ()) in
  let edges =
    Array.init (n - 1) (fun i -> { Edge.id = i; src = i; dst = i + 1; bytes = 8 })
  in
  {
    Graph.id = 0;
    name = "chain";
    period = 1000;
    est = 0;
    deadline = 900;
    tasks;
    edges;
    compat = None;
    unavailability_budget = None;
  }

let graph_validate_ok () =
  check Alcotest.bool "valid chain" true (Result.is_ok (Graph.validate (chain_graph 4)))

let graph_validate_cycle () =
  let g = chain_graph 3 in
  let g =
    {
      g with
      Graph.edges = Array.append g.Graph.edges [| { Edge.id = 9; src = 2; dst = 0; bytes = 1 } |];
    }
  in
  check Alcotest.bool "cycle rejected" true (Result.is_error (Graph.validate g))

let graph_validate_bad_edge () =
  let g = chain_graph 3 in
  let g =
    { g with Graph.edges = [| { Edge.id = 0; src = 0; dst = 42; bytes = 1 } |] }
  in
  check Alcotest.bool "foreign task rejected" true (Result.is_error (Graph.validate g))

let graph_validate_bad_period () =
  let g = { (chain_graph 3) with Graph.period = 0 } in
  check Alcotest.bool "zero period rejected" true (Result.is_error (Graph.validate g))

let graph_topological_order () =
  let g = chain_graph 5 in
  let order = Graph.topological_order g in
  check Alcotest.(list int) "chain order"
    [ 0; 1; 2; 3; 4 ]
    (List.map (fun (t : Task.t) -> t.id) order)

let graph_sources_sinks () =
  let g = chain_graph 3 in
  check Alcotest.(list int) "sources" [ 0 ]
    (List.map (fun (t : Task.t) -> t.id) (Graph.sources g));
  check Alcotest.(list int) "sinks" [ 2 ]
    (List.map (fun (t : Task.t) -> t.id) (Graph.sinks g))

let graph_task_deadline () =
  let g = chain_graph 2 in
  let with_own = mk_task ~id:0 ~deadline:(Some 123) () in
  check Alcotest.int "own deadline" 123 (Graph.task_deadline g with_own);
  check Alcotest.int "inherits graph deadline" 900 (Graph.task_deadline g g.Graph.tasks.(1))

(* --- Spec + Builder --- *)

let builder_roundtrip () =
  let spec, ids = Helpers.sw_chain 4 in
  check Alcotest.int "tasks" 4 (Spec.n_tasks spec);
  check Alcotest.int "edges" 3 (Spec.n_edges spec);
  check Alcotest.int "graphs" 1 (Spec.n_graphs spec);
  List.iteri
    (fun i id -> check Alcotest.int "ids sequential" i id)
    ids;
  (* adjacency *)
  check Alcotest.int "succ of 0" 1
    (List.length spec.Spec.succs.(0));
  check Alcotest.int "preds of 0" 0 (List.length spec.Spec.preds.(0))

let builder_cross_graph_edge () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"a" ~period:100 ~deadline:50 () in
  let g2 = Spec.Builder.add_graph b ~name:"b" ~period:100 ~deadline:50 () in
  let t1 = Spec.Builder.add_task b ~graph:g1 ~name:"x" ~exec:[| 1 |] () in
  let t2 = Spec.Builder.add_task b ~graph:g2 ~name:"y" ~exec:[| 1 |] () in
  Alcotest.check_raises "cross-graph edge"
    (Invalid_argument "Spec.Builder.add_edge: endpoints in different graphs")
    (fun () -> Spec.Builder.add_edge b ~src:t1 ~dst:t2 ~bytes:1)

let spec_hyperperiod () =
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"a" ~period:4_000 ~deadline:1_000 () in
  let g2 = Spec.Builder.add_graph b ~name:"b" ~period:6_000 ~deadline:1_000 () in
  ignore (Spec.Builder.add_task b ~graph:g1 ~name:"x" ~exec:[| 1 |] ());
  ignore (Spec.Builder.add_task b ~graph:g2 ~name:"y" ~exec:[| 1 |] ());
  let spec = Spec.Builder.finish_exn b ~name:"hp" () in
  check Alcotest.int "hyperperiod" 12_000 (Spec.hyperperiod spec);
  check Alcotest.int "copies of a" 3 (Spec.copies spec spec.Spec.graphs.(0));
  check Alcotest.int "copies of b" 2 (Spec.copies spec spec.Spec.graphs.(1))

let spec_boot_requirement_default () =
  let spec, _ = Helpers.sw_chain 2 in
  check Alcotest.int "default boot requirement" 50_000 spec.Spec.boot_time_requirement

(* --- static compatibility --- *)

let static_compat_disjoint () =
  let spec, _, _ = Helpers.two_hw_graphs ~overlap:false () in
  check Alcotest.bool "disjoint slots compatible" true (Spec.static_compatible spec 0 1);
  check Alcotest.bool "symmetric" true (Spec.static_compatible spec 1 0)

let static_compat_overlapping () =
  let spec, _, _ = Helpers.two_hw_graphs ~overlap:true () in
  check Alcotest.bool "overlapping envelopes incompatible" false
    (Spec.static_compatible spec 0 1)

let static_compat_self () =
  let spec, _, _ = Helpers.two_hw_graphs ~overlap:false () in
  check Alcotest.bool "never compatible with itself" false
    (Spec.static_compatible spec 0 0)

let static_compat_declared_wins () =
  (* Declared compatibility vectors override window analysis. *)
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"g1" ~period:1000 ~est:0 ~deadline:500 () in
  let g2 =
    Spec.Builder.add_graph b ~name:"g2" ~period:1000 ~est:0 ~deadline:500
      ~compat_with:[ g1 ] ()
  in
  ignore (Spec.Builder.add_task b ~graph:g1 ~name:"x" ~exec:[| 1 |] ());
  ignore (Spec.Builder.add_task b ~graph:g2 ~name:"y" ~exec:[| 1 |] ());
  let spec = Spec.Builder.finish_exn b ~name:"declared" () in
  check Alcotest.bool "declared although overlapping" true
    (Spec.static_compatible spec 0 1)

let static_compat_multirate () =
  (* period 10ms slot [0,2ms) vs period 5ms slot [2.5ms, 4.5ms): the fast
     graph hits [5,7) and [2.5,4.5)+5k... envelopes never intersect. *)
  let b = Spec.Builder.create () in
  let g1 = Spec.Builder.add_graph b ~name:"slow" ~period:10_000 ~est:0 ~deadline:2_000 () in
  let g2 =
    Spec.Builder.add_graph b ~name:"fast" ~period:5_000 ~est:2_500 ~deadline:2_000 ()
  in
  ignore (Spec.Builder.add_task b ~graph:g1 ~name:"x" ~exec:[| 10 |] ());
  ignore (Spec.Builder.add_task b ~graph:g2 ~name:"y" ~exec:[| 10 |] ());
  let spec = Spec.Builder.finish_exn b ~name:"mr" () in
  check Alcotest.bool "multirate disjoint" true (Spec.static_compatible spec 0 1);
  (* shifting the fast graph into the slow slot breaks it *)
  let b2 = Spec.Builder.create () in
  let h1 = Spec.Builder.add_graph b2 ~name:"slow" ~period:10_000 ~est:0 ~deadline:2_000 () in
  let h2 =
    Spec.Builder.add_graph b2 ~name:"fast" ~period:5_000 ~est:1_000 ~deadline:2_000 ()
  in
  ignore (Spec.Builder.add_task b2 ~graph:h1 ~name:"x" ~exec:[| 10 |] ());
  ignore (Spec.Builder.add_task b2 ~graph:h2 ~name:"y" ~exec:[| 10 |] ());
  let spec2 = Spec.Builder.finish_exn b2 ~name:"mr2" () in
  check Alcotest.bool "multirate overlapping" false (Spec.static_compatible spec2 0 1)

let topo_order_is_linear_extension =
  (* random DAG via layered construction, check topological property *)
  QCheck.Test.make ~name:"topological_order respects edges" ~count:100
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Crusade_util.Rng.create seed in
      let edges = ref [] in
      for d = 1 to n - 1 do
        let s = Crusade_util.Rng.int rng d in
        edges := (s, d) :: !edges
      done;
      let tasks = Array.init n (fun i -> mk_task ~id:i ()) in
      let edges =
        Array.of_list
          (List.mapi (fun i (s, d) -> { Edge.id = i; src = s; dst = d; bytes = 1 }) !edges)
      in
      let g =
        {
          Graph.id = 0;
          name = "dag";
          period = 100;
          est = 0;
          deadline = 50;
          tasks;
          edges;
          compat = None;
          unavailability_budget = None;
        }
      in
      let order = Graph.topological_order g in
      let pos = Hashtbl.create n in
      List.iteri (fun i (t : Task.t) -> Hashtbl.replace pos t.id i) order;
      Array.for_all
        (fun (e : Edge.t) -> Hashtbl.find pos e.src < Hashtbl.find pos e.dst)
        g.Graph.edges)

let suite =
  [
    Alcotest.test_case "exec_on" `Quick task_exec_on;
    Alcotest.test_case "preference forbids" `Quick task_preference_forbids;
    Alcotest.test_case "min/max exec" `Quick task_min_max_exec;
    Alcotest.test_case "runs nowhere" `Quick task_runs_nowhere;
    Alcotest.test_case "excludes" `Quick task_excludes;
    Alcotest.test_case "memory total" `Quick task_memory_total;
    Alcotest.test_case "validate ok" `Quick graph_validate_ok;
    Alcotest.test_case "validate cycle" `Quick graph_validate_cycle;
    Alcotest.test_case "validate bad edge" `Quick graph_validate_bad_edge;
    Alcotest.test_case "validate bad period" `Quick graph_validate_bad_period;
    Alcotest.test_case "topological order" `Quick graph_topological_order;
    Alcotest.test_case "sources/sinks" `Quick graph_sources_sinks;
    Alcotest.test_case "task deadline" `Quick graph_task_deadline;
    Alcotest.test_case "builder roundtrip" `Quick builder_roundtrip;
    Alcotest.test_case "cross-graph edge" `Quick builder_cross_graph_edge;
    Alcotest.test_case "hyperperiod/copies" `Quick spec_hyperperiod;
    Alcotest.test_case "boot requirement default" `Quick spec_boot_requirement_default;
    Alcotest.test_case "static compat disjoint" `Quick static_compat_disjoint;
    Alcotest.test_case "static compat overlap" `Quick static_compat_overlapping;
    Alcotest.test_case "static compat self" `Quick static_compat_self;
    Alcotest.test_case "static compat declared" `Quick static_compat_declared_wins;
    Alcotest.test_case "static compat multirate" `Quick static_compat_multirate;
    qcheck topo_order_is_linear_extension;
  ]
