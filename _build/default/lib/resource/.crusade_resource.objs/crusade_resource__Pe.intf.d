lib/resource/pe.mli: Format
