test/test_extras.ml: Alcotest Array Crusade Crusade_alloc Crusade_reconfig Crusade_sched Crusade_taskgraph Crusade_workloads Filename Format Helpers List Printf String Sys
