(** CRUSADE: the heuristic constructive co-synthesis flow (Fig. 5).

    Pre-processing (association array, clustering) -> synthesis (cluster
    allocation with scheduling and finish-time estimation in the inner
    loop) -> dynamic-reconfiguration generation (compatibility-driven
    merging of programmable devices into multi-mode devices, and
    reconfiguration-controller interface synthesis). *)

type options = {
  dynamic_reconfiguration : bool;
      (** enable multi-mode PPEs (new-mode allocations and the merge
          phase); off = every programmable device keeps one image *)
  copy_cap : int;  (** association-array explicit-copy cap per graph *)
  max_cluster_size : int;
  use_clustering : bool;  (** false = singleton clusters (ablation) *)
  eval_window : int;
      (** allocation options evaluated per cluster before falling back
          to the least-tardy one *)
  merge_trials_per_pass : int;
  allow_new_pes : bool;
      (** false restricts allocation to the existing PEs (plus new modes
          on programmable devices) — the field-upgrade scenario of
          Section 3, where features are added by reprogramming alone *)
  jobs : int;
      (** domains used for speculative candidate evaluation (allocation
          inner loop and merge trials); results are bit-identical to
          [jobs = 1] — the lowest-indexed candidate the sequential search
          would commit always wins.  Defaults to the [CRUSADE_JOBS]
          environment variable (clamped to the machine), else 1. *)
  prune : bool;
      (** stage-1 candidate evaluation (default true): consult the
          admissible tardiness lower bound
          {!Crusade_sched.Schedule.estimate} before scheduling a
          candidate, and skip the full schedule when the bound already
          proves the candidate infeasible and no better than the
          incumbent.  Synthesis results are bit-identical with pruning
          on or off. *)
  memo : bool;
      (** stage-2 candidate evaluation (default true): serve repeated
          schedules of structurally identical architectures from the
          run's bounded {!Crusade_sched.Memo} table. *)
  incremental : bool;
      (** incremental rescheduling (default true): evaluate trial
          candidates by replaying the provably unchanged prefix of the
          last full scheduler run ({!Crusade_sched.Incremental}) instead
          of rebuilding every timeline from scratch.  Synthesis results
          are bit-identical with it on or off; [--no-incremental] in the
          CLI and benchmark drivers maps here. *)
  trace : Crusade_util.Trace.t option;
      (** when set, every synthesis phase (pre-processing, clustering,
          allocation per cluster and per candidate, repair, merge
          trials, interface synthesis) and every underlying
          [Schedule.run]/[estimate] emits span events into the sink,
          plus counter samples of the evaluator statistics at phase
          boundaries; [None] (the default) takes a no-op fast path that
          never reads the clock, and synthesis output is bit-identical
          either way.  Export with {!Crusade_util.Trace.write_file}. *)
}

val default_options : options

type eval_stats = {
  pruned : int;
      (** candidates rejected by the stage-1 bound without a schedule *)
  memo_hits : int;  (** schedules served from the memo table *)
  memo_misses : int;  (** schedules actually computed *)
  rollbacks : int;  (** journaled trial mutations undone in place *)
  replays : int;
      (** candidate evaluations served by incremental prefix replay *)
  rebuilds : int;
      (** full scheduler runs through the incremental engine; 0 when
          [options.incremental] is off *)
}
(** Two-stage-evaluator counters of one synthesis flow.  Each flow owns
    its counters (and its memo table), so back-to-back or concurrent
    syntheses in one process report fully independent, exact statistics. *)

type result = {
  spec : Crusade_taskgraph.Spec.t;
  arch : Crusade_alloc.Arch.t;
  clustering : Crusade_cluster.Clustering.t;
  schedule : Crusade_sched.Schedule.t;
  cost : float;
  n_pes : int;
  n_links : int;
  n_modes : int;  (** configuration images across all PPEs *)
  deadlines_met : bool;
  cpu_seconds : float;
      (** [Sys.time] delta: processor time summed over every domain, so
          it exceeds elapsed time when [options.jobs > 1] *)
  wall_seconds : float;  (** elapsed wall-clock time of the synthesis *)
  merge_stats : Crusade_reconfig.Merge.stats option;
  chosen_interface : Crusade_reconfig.Interface.option_t option;
  eval_stats : eval_stats;
}

val synthesize :
  ?options:options ->
  ?include_graph:(int -> bool) ->
  Crusade_taskgraph.Spec.t ->
  Crusade_resource.Library.t ->
  (result, string) Stdlib.result
(** Runs the full co-synthesis flow.  [Error] is returned only for
    structurally impossible inputs (a cluster no PE type can host);
    deadline misses are reported through [deadlines_met].
    [include_graph] restricts synthesis to a subset of the task graphs
    (used by {!Upgrade}); excluded graphs' clusters stay unallocated. *)

val continue_allocation :
  ?options:options -> result -> (result, string) Stdlib.result
(** Resumes a partial synthesis: allocates every still-unplaced cluster
    against (a copy of) the result's architecture, then re-runs
    dynamic-reconfiguration generation and interface synthesis.  With
    [options.allow_new_pes = false] this asks: can the remaining
    functionality be accommodated purely by reprogramming the deployed
    hardware? *)

val audit : result -> Crusade_alloc.Audit.violation list
(** End-to-end first-principles audit of a synthesis result, empty when
    sound.  Composes:
    - the architecture-level rules of {!Crusade_alloc.Audit.check}
      (placement feasibility, occupancy/capacity/cost/count accounting,
      exclusion, connectivity, mode discipline), judged against the
      schedule-discovered graph compatibility — the merge phase's own
      notion — refined by actual per-device serialization, so legal
      dynamic-reconfiguration sharings are never flagged;
    - a ["coverage"] rule: every cluster of the specification is placed;
    - a ["verdict-consistency"] rule: the result's [deadlines_met]
      agrees with its schedule;
    - the timeline rules of {!Crusade_sched.Validate.check} (precedence,
      arrivals, execution times, CPU capacity, mode exclusivity and
      boot gaps, deadline verdict).

    The audit runs once on a finished result — never inside the
    synthesis inner loop — so enabling it costs a single pass over the
    final architecture and schedule. *)

val pp_report : Format.formatter -> result -> unit
(** Human-readable architecture/synthesis report. *)
