module Spec = Crusade_taskgraph.Spec
module Task = Crusade_taskgraph.Task
module Edge = Crusade_taskgraph.Edge
module Library = Crusade_resource.Library
module Pe = Crusade_resource.Pe
module Caps = Crusade_resource.Caps

type cluster = {
  cid : int;
  graph : int;
  members : int list;
  feasible_mask : int;
  gates : int;
  pins : int;
  memory_bytes : int;
}

type t = { clusters : cluster array; of_task : int array }

let task_mask lib (task : Task.t) =
  let mask = ref 0 in
  for p = 0 to Library.n_pe_types lib - 1 do
    if Task.can_run_on task p then mask := !mask lor (1 lsl p)
  done;
  !mask

let feasibility_mask lib ~gates ~pins ~memory_bytes ~task_mask =
  let mask = ref 0 in
  for p = 0 to Library.n_pe_types lib - 1 do
    if task_mask land (1 lsl p) <> 0 then begin
      let pe = Library.pe lib p in
      let fits =
        match pe.Pe.pe_class with
        | Pe.General_purpose cpu ->
            memory_bytes <= cpu.memory_bank_bytes * cpu.max_memory_banks
        | Pe.Asic_pe a -> gates <= a.gates && pins <= a.pins
        | Pe.Programmable _ ->
            gates <= Caps.usable_pfus pe && pins <= Caps.usable_pins pe
      in
      if fits then mask := !mask lor (1 lsl p)
    end
  done;
  !mask

let aggregate lib (spec : Spec.t) members =
  let gates = List.fold_left (fun acc id -> acc + (Spec.task spec id).Task.gates) 0 members in
  let pins = List.fold_left (fun acc id -> acc + (Spec.task spec id).Task.pins) 0 members in
  let memory_bytes =
    List.fold_left
      (fun acc id -> acc + Task.total_bytes (Spec.task spec id).Task.memory)
      0 members
  in
  let task_masks =
    List.fold_left (fun acc id -> acc land task_mask lib (Spec.task spec id)) (-1) members
  in
  let mask = feasibility_mask lib ~gates ~pins ~memory_bytes ~task_mask:task_masks in
  (gates, pins, memory_bytes, mask)

let make_cluster lib spec ~cid ~graph members =
  let gates, pins, memory_bytes, mask = aggregate lib spec members in
  { cid; graph; members; feasible_mask = mask; gates; pins; memory_bytes }

let singletons (spec : Spec.t) lib =
  let n = Spec.n_tasks spec in
  let clusters =
    Array.init n (fun i ->
        let task = Spec.task spec i in
        make_cluster lib spec ~cid:i ~graph:task.Task.graph [ i ])
  in
  { clusters; of_task = Array.init n (fun i -> i) }

(* Can [candidate] join the cluster currently holding [members]?  The
   grown cluster must retain a feasible PE type, stay within the size cap
   and introduce no exclusion conflict. *)
let can_join lib (spec : Spec.t) ~max_cluster_size members candidate =
  if List.length members >= max_cluster_size then false
  else begin
    let cand = Spec.task spec candidate in
    let no_exclusion =
      List.for_all (fun id -> not (Task.excludes (Spec.task spec id) cand)) members
    in
    if not no_exclusion then false
    else begin
      let _, _, _, mask = aggregate lib spec (candidate :: members) in
      mask <> 0
    end
  end

let run ?(max_cluster_size = 8) (spec : Spec.t) lib =
  let n = Spec.n_tasks spec in
  let of_task = Array.make n (-1) in
  let clusters = ref [] and next_cid = ref 0 in
  let exec_time = Priority.unallocated_exec in
  (* Intra-cluster edges communicate in zero time once clustered. *)
  let comm_time (e : Edge.t) =
    if of_task.(e.src) >= 0 && of_task.(e.src) = of_task.(e.dst) then 0
    else Priority.unallocated_comm lib e
  in
  let levels = ref (Priority.compute spec ~exec_time ~comm_time) in
  let unclustered_best () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if of_task.(i) < 0 && (!best < 0 || !levels.(i) > !levels.(!best)) then best := i
    done;
    !best
  in
  let rec grow members head =
    (* Extend along the highest-priority unclustered successor. *)
    let candidates =
      List.filter_map
        (fun (e : Edge.t) -> if of_task.(e.dst) < 0 then Some e.dst else None)
        spec.succs.(head)
    in
    let viable = List.filter (can_join lib spec ~max_cluster_size members) candidates in
    let best =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> Some c
          | Some b -> if !levels.(c) > !levels.(b) then Some c else acc)
        None viable
    in
    match best with
    | None -> List.rev members
    | Some c -> grow (c :: members) c
  in
  let rec loop () =
    let seed = unclustered_best () in
    if seed >= 0 then begin
      let members = grow [ seed ] seed in
      let cid = !next_cid in
      incr next_cid;
      List.iter (fun id -> of_task.(id) <- cid) members;
      let graph = (Spec.task spec seed).Task.graph in
      clusters := make_cluster lib spec ~cid ~graph members :: !clusters;
      (* The longest path changed: recompute levels (Section 5). *)
      levels := Priority.compute spec ~exec_time ~comm_time;
      loop ()
    end
  in
  loop ();
  { clusters = Array.of_list (List.rev !clusters); of_task }

let cluster_priority t task_levels cid =
  List.fold_left
    (fun acc id -> max acc task_levels.(id))
    min_int t.clusters.(cid).members
